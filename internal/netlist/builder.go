package netlist

import "fmt"

// Builder incrementally constructs a Netlist. All gate-creation methods
// tag new cells with the current region (see SetRegion / PushRegion).
type Builder struct {
	name    string
	cells   []Cell
	inputs  []Port
	outputs []Port
	driver  []int
	region  string
	stack   []string
	lo, hi  Net // lazily created tie cells
}

// NewBuilder returns an empty builder for a design with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:   name,
		driver: []int{-2}, // net 0 is reserved/invalid
	}
}

// SetRegion sets the region tag applied to subsequently created cells.
func (b *Builder) SetRegion(region string) { b.region = region }

// Region returns the current region tag.
func (b *Builder) Region() string { return b.region }

// PushRegion appends a path segment to the current region tag.
func (b *Builder) PushRegion(segment string) {
	b.stack = append(b.stack, b.region)
	if b.region == "" {
		b.region = segment
	} else {
		b.region = b.region + "/" + segment
	}
}

// PopRegion restores the region tag saved by the matching PushRegion.
func (b *Builder) PopRegion() {
	if len(b.stack) == 0 {
		panic("netlist: PopRegion without matching PushRegion")
	}
	b.region = b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]
}

// NewNet allocates a fresh undriven net.
func (b *Builder) NewNet() Net {
	b.driver = append(b.driver, -2)
	return Net(len(b.driver) - 1)
}

// Input declares a named input bus of the given width and returns its
// nets, LSB first.
func (b *Builder) Input(name string, width int) []Net {
	nets := make([]Net, width)
	for i := range nets {
		nets[i] = b.NewNet()
		b.driver[nets[i]] = -1
	}
	b.inputs = append(b.inputs, Port{Name: name, Nets: nets})
	return nets
}

// Output declares a named output bus connected to the given nets.
func (b *Builder) Output(name string, nets []Net) {
	cp := make([]Net, len(nets))
	copy(cp, nets)
	b.outputs = append(b.outputs, Port{Name: name, Nets: cp})
}

// addCell appends a cell and returns its output net.
func (b *Builder) addCell(t CellType, inputs ...Net) Net {
	if len(inputs) != t.NumInputs() {
		panic(fmt.Sprintf("netlist: %v expects %d inputs, got %d", t, t.NumInputs(), len(inputs)))
	}
	out := b.NewNet()
	b.driver[out] = len(b.cells)
	ins := make([]Net, len(inputs))
	copy(ins, inputs)
	b.cells = append(b.cells, Cell{Type: t, Region: b.region, Inputs: ins, Output: out})
	return out
}

// Low returns the constant-0 net, creating a single shared TIELO cell on
// first use.
func (b *Builder) Low() Net {
	if b.lo == InvalidNet {
		b.lo = b.addCell(TieLo)
	}
	return b.lo
}

// High returns the constant-1 net, creating a single shared TIEHI cell on
// first use.
func (b *Builder) High() Net {
	if b.hi == InvalidNet {
		b.hi = b.addCell(TieHi)
	}
	return b.hi
}

// Const returns the Low or High net for bit v.
func (b *Builder) Const(v bool) Net {
	if v {
		return b.High()
	}
	return b.Low()
}

// Single-output gate constructors.

// Buf inserts a buffer.
func (b *Builder) Buf(a Net) Net { return b.addCell(Buf, a) }

// Not inserts an inverter.
func (b *Builder) Not(a Net) Net { return b.addCell(Inv, a) }

// And inserts a 2-input AND.
func (b *Builder) And(a, c Net) Net { return b.addCell(And2, a, c) }

// Nand inserts a 2-input NAND.
func (b *Builder) Nand(a, c Net) Net { return b.addCell(Nand2, a, c) }

// Or inserts a 2-input OR.
func (b *Builder) Or(a, c Net) Net { return b.addCell(Or2, a, c) }

// Nor inserts a 2-input NOR.
func (b *Builder) Nor(a, c Net) Net { return b.addCell(Nor2, a, c) }

// Xor inserts a 2-input XOR.
func (b *Builder) Xor(a, c Net) Net { return b.addCell(Xor2, a, c) }

// Xnor inserts a 2-input XNOR.
func (b *Builder) Xnor(a, c Net) Net { return b.addCell(Xnor2, a, c) }

// Mux inserts a 2:1 multiplexer returning s ? hi : lo.
func (b *Builder) Mux(lo, hi, s Net) Net { return b.addCell(Mux2, lo, hi, s) }

// Reg inserts a D flip-flop clocked by the implicit global clock.
func (b *Builder) Reg(d Net) Net { return b.addCell(DFF, d) }

// RegE inserts an enabled D flip-flop: q <- en ? d : q.
func (b *Builder) RegE(d, en Net) Net { return b.addCell(DFFE, d, en) }

// Bus helpers. All operate element-wise, LSB first.

// XorBus XORs two equal-width buses.
func (b *Builder) XorBus(x, y []Net) []Net {
	mustSameWidth("XorBus", x, y)
	out := make([]Net, len(x))
	for i := range x {
		out[i] = b.Xor(x[i], y[i])
	}
	return out
}

// AndBus ANDs two equal-width buses.
func (b *Builder) AndBus(x, y []Net) []Net {
	mustSameWidth("AndBus", x, y)
	out := make([]Net, len(x))
	for i := range x {
		out[i] = b.And(x[i], y[i])
	}
	return out
}

// NotBus inverts every bit of a bus.
func (b *Builder) NotBus(x []Net) []Net {
	out := make([]Net, len(x))
	for i := range x {
		out[i] = b.Not(x[i])
	}
	return out
}

// MuxBus selects between two equal-width buses: s ? hi : lo.
func (b *Builder) MuxBus(lo, hi []Net, s Net) []Net {
	mustSameWidth("MuxBus", lo, hi)
	out := make([]Net, len(lo))
	for i := range lo {
		out[i] = b.Mux(lo[i], hi[i], s)
	}
	return out
}

// RegBus registers every bit of a bus.
func (b *Builder) RegBus(d []Net) []Net {
	out := make([]Net, len(d))
	for i := range d {
		out[i] = b.Reg(d[i])
	}
	return out
}

// RegEBus registers every bit of a bus with a shared enable.
func (b *Builder) RegEBus(d []Net, en Net) []Net {
	out := make([]Net, len(d))
	for i := range d {
		out[i] = b.RegE(d[i], en)
	}
	return out
}

// ConstBus returns a bus of constant nets encoding value (LSB first).
func (b *Builder) ConstBus(value uint64, width int) []Net {
	out := make([]Net, width)
	for i := range out {
		out[i] = b.Const(value>>uint(i)&1 == 1)
	}
	return out
}

// ReduceXor XORs all bits of a bus down to one net using a balanced tree.
func (b *Builder) ReduceXor(x []Net) Net { return b.reduce(x, b.Xor) }

// ReduceAnd ANDs all bits of a bus down to one net using a balanced tree.
func (b *Builder) ReduceAnd(x []Net) Net { return b.reduce(x, b.And) }

// ReduceOr ORs all bits of a bus down to one net using a balanced tree.
func (b *Builder) ReduceOr(x []Net) Net { return b.reduce(x, b.Or) }

func (b *Builder) reduce(x []Net, op func(Net, Net) Net) Net {
	switch len(x) {
	case 0:
		return b.Low()
	case 1:
		return x[0]
	}
	mid := len(x) / 2
	return op(b.reduce(x[:mid], op), b.reduce(x[mid:], op))
}

// EqualsConst returns a net that is 1 when bus x equals the constant
// value.
func (b *Builder) EqualsConst(x []Net, value uint64) Net {
	terms := make([]Net, len(x))
	for i, bit := range x {
		if value>>uint(i)&1 == 1 {
			terms[i] = bit
		} else {
			terms[i] = b.Not(bit)
		}
	}
	return b.ReduceAnd(terms)
}

// Incrementer builds x+1 over the bus width (wrap-around), returning the
// sum bus. It uses a ripple chain of XOR/AND gates.
func (b *Builder) Incrementer(x []Net) []Net {
	out := make([]Net, len(x))
	carry := b.High()
	for i, bit := range x {
		out[i] = b.Xor(bit, carry)
		if i < len(x)-1 {
			carry = b.And(bit, carry)
		}
	}
	return out
}

// Counter builds a free-running width-bit counter register and returns its
// outputs. When en is valid the counter only advances while en is high.
func (b *Builder) Counter(width int, en Net) []Net {
	// Create the registers first so the increment logic can feed back.
	q := make([]Net, width)
	cells := make([]int, width)
	for i := range q {
		var out Net
		if en == InvalidNet {
			out = b.addCell(DFF, b.Low()) // placeholder D, patched below
		} else {
			out = b.addCell(DFFE, b.Low(), en)
		}
		q[i] = out
		cells[i] = len(b.cells) - 1
	}
	next := b.Incrementer(q)
	for i, ci := range cells {
		b.cells[ci].Inputs[0] = next[i]
	}
	return q
}

// NumCells returns the number of cells created so far.
func (b *Builder) NumCells() int { return len(b.cells) }

// GateEquivalentsSince sums the gate-equivalent area of every cell
// created at or after cell index from (see NumCells). Inserted payloads
// use it to pad their footprint to a fixed size so different inserts
// yield the same die geometry.
func (b *Builder) GateEquivalentsSince(from int) float64 {
	ge := 0.0
	for _, c := range b.cells[from:] {
		ge += c.Type.GateEquivalents()
	}
	return ge
}

// ReplaceFanout rewires the readers of net old onto net new: every
// input pin of a cell with index below cellLimit, and every output-port
// connection. Cells at or above cellLimit keep reading old, so a payload
// inserted after the original design can splice itself into old's fanout
// without rewiring its own trigger logic or the payload gate itself
// (which must keep reading the original signal). The driver of old is
// untouched. It returns the number of pins rewired.
func (b *Builder) ReplaceFanout(old, new Net, cellLimit int) int {
	if old == new {
		return 0
	}
	n := 0
	for ci := range b.cells[:cellLimit] {
		ins := b.cells[ci].Inputs
		for pi := range ins {
			if ins[pi] == old {
				ins[pi] = new
				n++
			}
		}
	}
	for oi := range b.outputs {
		nets := b.outputs[oi].Nets
		for ni := range nets {
			if nets[ni] == old {
				nets[ni] = new
				n++
			}
		}
	}
	return n
}

// SetNetLoad attaches extra load capacitance (farads) to a net's driving
// cell, modeling a heavily loaded wire such as a pad or the AM Trojan's
// antenna. It panics when the net has no driving cell.
func (b *Builder) SetNetLoad(n Net, farads float64) {
	d := b.driver[n]
	if d < 0 {
		panic(fmt.Sprintf("netlist: SetNetLoad on undriven net %d", n))
	}
	b.cells[d].Load = farads
}

// PatchCellInput rewires one input pin of an existing cell. Generators
// with registered feedback use it: create the register with a placeholder
// D input, build the logic that consumes its output, then patch the D pin.
func (b *Builder) PatchCellInput(cell, pin int, n Net) {
	b.cells[cell].Inputs[pin] = n
}

// Build finalizes the netlist and validates it, panicking on structural
// errors (which are generator bugs, not runtime conditions).
func (b *Builder) Build() *Netlist {
	n := &Netlist{
		Name:    b.name,
		Cells:   b.cells,
		Inputs:  b.inputs,
		Outputs: b.outputs,
		numNets: len(b.driver),
		driver:  b.driver,
		inPorts: make(map[string]int, len(b.inputs)),
	}
	for i, p := range b.inputs {
		n.inPorts[p.Name] = i
	}
	if err := n.Check(); err != nil {
		panic(err)
	}
	return n
}

func mustSameWidth(op string, x, y []Net) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("netlist: %s width mismatch %d vs %d", op, len(x), len(y)))
	}
}
