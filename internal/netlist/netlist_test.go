package netlist

import (
	"strings"
	"testing"
)

func TestCellTypeArity(t *testing.T) {
	cases := map[CellType]int{
		TieLo: 0, TieHi: 0, Buf: 1, Inv: 1, DFF: 1,
		And2: 2, Nand2: 2, Or2: 2, Nor2: 2, Xor2: 2, Xnor2: 2, DFFE: 2,
		Mux2: 3,
	}
	for typ, want := range cases {
		if got := typ.NumInputs(); got != want {
			t.Errorf("%v.NumInputs() = %d, want %d", typ, got, want)
		}
	}
}

func TestCellTypeString(t *testing.T) {
	if Xor2.String() != "XOR2" || DFF.String() != "DFF" {
		t.Fatal("String names wrong")
	}
	if !strings.Contains(CellType(99).String(), "99") {
		t.Fatal("out-of-range String should include the number")
	}
}

func TestCellTypeProperties(t *testing.T) {
	if !DFF.IsSequential() || !DFFE.IsSequential() || Xor2.IsSequential() {
		t.Fatal("IsSequential wrong")
	}
	for typ := CellType(0); typ < numCellTypes; typ++ {
		if typ.GateEquivalents() <= 0 {
			t.Errorf("%v has non-positive area", typ)
		}
		if typ.SwitchingCharge() <= 0 {
			t.Errorf("%v has non-positive switching charge", typ)
		}
	}
	if DFF.GateEquivalents() <= Inv.GateEquivalents() {
		t.Fatal("a flip-flop must be larger than an inverter")
	}
}

func TestBuilderBasicGates(t *testing.T) {
	b := NewBuilder("t")
	in := b.Input("in", 2)
	y := b.Xor(in[0], in[1])
	b.Output("y", []Net{y})
	n := b.Build()
	if got := n.Stats("").Cells; got != 1 {
		t.Fatalf("cells = %d, want 1", got)
	}
	if n.Name != "t" {
		t.Fatalf("name = %q", n.Name)
	}
	p, ok := n.InputPort("in")
	if !ok || len(p.Nets) != 2 {
		t.Fatal("input port lost")
	}
	if _, ok := n.OutputPort("y"); !ok {
		t.Fatal("output port lost")
	}
	if _, ok := n.InputPort("nope"); ok {
		t.Fatal("phantom port")
	}
}

func TestBuilderRegions(t *testing.T) {
	b := NewBuilder("t")
	in := b.Input("in", 1)
	b.SetRegion("aes")
	b.PushRegion("sbox")
	if b.Region() != "aes/sbox" {
		t.Fatalf("region = %q", b.Region())
	}
	b.Not(in[0])
	b.PopRegion()
	b.Buf(in[0])
	b.Output("o", []Net{in[0]})
	n := b.Build()
	if got := n.Stats("aes/sbox").Cells; got != 1 {
		t.Fatalf("sbox cells = %d", got)
	}
	if got := n.Stats("aes").Cells; got != 2 {
		t.Fatalf("aes cells = %d", got)
	}
	regions := n.Regions()
	if len(regions) != 1 || regions[0] != "aes" {
		t.Fatalf("regions = %v", regions)
	}
}

func TestPushRegionFromEmpty(t *testing.T) {
	b := NewBuilder("t")
	b.PushRegion("top")
	if b.Region() != "top" {
		t.Fatalf("region = %q", b.Region())
	}
	b.PopRegion()
	if b.Region() != "" {
		t.Fatalf("region after pop = %q", b.Region())
	}
}

func TestPopRegionUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder("t").PopRegion()
}

func TestTieCellsShared(t *testing.T) {
	b := NewBuilder("t")
	lo1 := b.Low()
	lo2 := b.Low()
	hi := b.High()
	if lo1 != lo2 {
		t.Fatal("Low must return a shared net")
	}
	if lo1 == hi {
		t.Fatal("Low and High must differ")
	}
	if b.Const(true) != hi || b.Const(false) != lo1 {
		t.Fatal("Const mapping wrong")
	}
	b.Output("o", []Net{lo1, hi})
	n := b.Build()
	if got := n.Stats("").Cells; got != 2 {
		t.Fatalf("tie cells = %d, want 2", got)
	}
}

func TestConstBus(t *testing.T) {
	b := NewBuilder("t")
	bus := b.ConstBus(0b1011, 6)
	b.Output("o", bus)
	n := b.Build()
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	if len(bus) != 6 {
		t.Fatalf("width = %d", len(bus))
	}
}

func TestBuilderArityPanics(t *testing.T) {
	b := NewBuilder("t")
	in := b.Input("in", 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.addCell(Xor2, in[0]) // wrong arity
}

func TestBusHelperWidthPanics(t *testing.T) {
	b := NewBuilder("t")
	x := b.Input("x", 2)
	y := b.Input("y", 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.XorBus(x, y)
}

func TestStatsByType(t *testing.T) {
	b := NewBuilder("t")
	in := b.Input("in", 2)
	b.Xor(in[0], in[1])
	b.Xor(in[0], in[1])
	b.Reg(in[0])
	b.Output("o", in)
	n := b.Build()
	s := n.Stats("")
	if s.ByType[Xor2] != 2 || s.ByType[DFF] != 1 {
		t.Fatalf("ByType = %v", s.ByType)
	}
	if s.Sequential != 1 {
		t.Fatalf("Sequential = %d", s.Sequential)
	}
	wantGE := 2*Xor2.GateEquivalents() + DFF.GateEquivalents()
	if s.GateEquivalent != wantGE {
		t.Fatalf("GE = %g, want %g", s.GateEquivalent, wantGE)
	}
}

func TestCheckCatchesUndrivenNet(t *testing.T) {
	b := NewBuilder("t")
	in := b.Input("in", 1)
	dangling := b.NewNet()
	y := b.And(in[0], dangling)
	b.Output("y", []Net{y})
	n := &Netlist{
		Name:    b.name,
		Cells:   b.cells,
		Inputs:  b.inputs,
		Outputs: b.outputs,
		numNets: len(b.driver),
		driver:  b.driver,
		inPorts: map[string]int{"in": 0},
	}
	if err := n.Check(); err == nil {
		t.Fatal("Check must reject undriven input nets")
	}
}

func TestBuildPanicsOnInvalid(t *testing.T) {
	b := NewBuilder("t")
	in := b.Input("in", 1)
	b.And(in[0], b.NewNet())
	defer func() {
		if recover() == nil {
			t.Fatal("Build must panic on structural errors")
		}
	}()
	b.Build()
}

func TestDriverBookkeeping(t *testing.T) {
	b := NewBuilder("t")
	in := b.Input("in", 1)
	y := b.Not(in[0])
	b.Output("y", []Net{y})
	n := b.Build()
	if n.Driver(in[0]) != -1 {
		t.Fatal("primary input driver must be -1")
	}
	if n.Driver(y) != 0 {
		t.Fatalf("driver of y = %d, want cell 0", n.Driver(y))
	}
	if n.NumNets() != 3 { // invalid + input + output
		t.Fatalf("NumNets = %d", n.NumNets())
	}
}

func TestStuckAt(t *testing.T) {
	b := NewBuilder("sa")
	in := b.Input("in", 2)
	x := b.Xor(in[0], in[1])
	y := b.And(x, in[0])
	b.Output("y", []Net{y})
	n := b.Build()

	sa, err := n.StuckAt(x, true)
	if err != nil {
		t.Fatal(err)
	}
	// The driver of x is now a TIEHI with no inputs.
	d := sa.Driver(x)
	if sa.Cells[d].Type != TieHi || len(sa.Cells[d].Inputs) != 0 {
		t.Fatalf("stuck cell = %+v", sa.Cells[d])
	}
	// The original netlist is untouched.
	if n.Cells[n.Driver(x)].Type != Xor2 {
		t.Fatal("original mutated")
	}
	// Region survives for layout/power bookkeeping.
	if sa.Cells[d].Region != n.Cells[n.Driver(x)].Region {
		t.Fatal("region lost")
	}
	// Stuck-at-0 variant.
	sa0, err := n.StuckAt(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if sa0.Cells[sa0.Driver(x)].Type != TieLo {
		t.Fatal("stuck-at-0 wrong type")
	}
	// Errors: invalid net and primary input.
	if _, err := n.StuckAt(InvalidNet, true); err == nil {
		t.Fatal("invalid net must error")
	}
	if _, err := n.StuckAt(Net(9999), true); err == nil {
		t.Fatal("out-of-range net must error")
	}
	if _, err := n.StuckAt(in[0], true); err == nil {
		t.Fatal("primary input must error")
	}
}

func TestBusHelpers(t *testing.T) {
	b := NewBuilder("bus")
	x := b.Input("x", 4)
	y := b.Input("y", 4)
	en := b.Input("en", 1)
	s := b.Input("s", 1)
	if got := len(b.XorBus(x, y)); got != 4 {
		t.Fatalf("XorBus width %d", got)
	}
	if got := len(b.AndBus(x, y)); got != 4 {
		t.Fatalf("AndBus width %d", got)
	}
	if got := len(b.NotBus(x)); got != 4 {
		t.Fatalf("NotBus width %d", got)
	}
	if got := len(b.MuxBus(x, y, s[0])); got != 4 {
		t.Fatalf("MuxBus width %d", got)
	}
	if got := len(b.RegBus(x)); got != 4 {
		t.Fatalf("RegBus width %d", got)
	}
	if got := len(b.RegEBus(x, en[0])); got != 4 {
		t.Fatalf("RegEBus width %d", got)
	}
	outs := []Net{
		b.ReduceXor(x), b.ReduceAnd(x), b.ReduceOr(x),
		b.ReduceXor(nil), // empty reduction is constant 0
		b.EqualsConst(x, 5),
	}
	outs = append(outs, b.Incrementer(x)...)
	outs = append(outs, b.Counter(3, en[0])...)
	b.Output("o", outs)
	n := b.Build()
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	if b.NumCells() != len(n.Cells) {
		t.Fatal("NumCells mismatch")
	}
}

func TestSetNetLoad(t *testing.T) {
	b := NewBuilder("load")
	in := b.Input("in", 1)
	y := b.Buf(in[0])
	b.SetNetLoad(y, 2e-12)
	b.Output("y", []Net{y})
	n := b.Build()
	if n.Cells[n.Driver(y)].Load != 2e-12 {
		t.Fatal("load not recorded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetNetLoad on an input net must panic")
		}
	}()
	b.SetNetLoad(in[0], 1e-12)
}
