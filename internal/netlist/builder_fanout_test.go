package netlist

import "testing"

func TestReplaceFanout(t *testing.T) {
	b := NewBuilder("fanout")
	in := b.Input("in", 2)
	victim := b.And(in[0], in[1])
	r1 := b.Not(victim)
	r2 := b.Or(victim, in[0])
	b.Output("out", []Net{victim, r1, r2})

	limit := b.NumCells()
	repl := b.Xor(victim, in[1]) // reads victim, but sits above limit
	n := b.ReplaceFanout(victim, repl, limit)
	// Rewired: r1's pin, one of r2's pins, and the output-port slot.
	if n != 3 {
		t.Fatalf("ReplaceFanout rewired %d pins, want 3", n)
	}
	net := b.Build()
	for _, c := range net.Cells[limit:] {
		for _, in := range c.Inputs {
			if in == repl {
				t.Fatalf("cell above limit rewired onto replacement")
			}
		}
	}
	out, _ := net.OutputPort("out")
	if out.Nets[0] != repl {
		t.Errorf("output port still reads %d, want %d", out.Nets[0], repl)
	}
	if err := net.Check(); err != nil {
		t.Fatalf("rewired netlist invalid: %v", err)
	}
	if b.ReplaceFanout(victim, victim, 0) != 0 {
		t.Errorf("self-replacement should rewire nothing")
	}
}

func TestGateEquivalentsSince(t *testing.T) {
	b := NewBuilder("ge")
	in := b.Input("in", 1)
	b.Not(in[0]) // 0.5 GE, before the mark
	mark := b.NumCells()
	b.Buf(in[0])        // 0.75
	b.And(in[0], in[0]) // 1.25
	b.Reg(in[0])        // 5.0
	if got := b.GateEquivalentsSince(mark); got != 7.0 {
		t.Errorf("GateEquivalentsSince = %v, want 7.0", got)
	}
	if got := b.GateEquivalentsSince(0); got != 7.5 {
		t.Errorf("GateEquivalentsSince(0) = %v, want 7.5", got)
	}
}
