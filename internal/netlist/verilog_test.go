package netlist

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func buildVerilogSample(t *testing.T) *Netlist {
	t.Helper()
	b := NewBuilder("v-sample 1")
	in := b.Input("data_in", 2)
	b.SetRegion("logic")
	x := b.Xor(in[0], in[1])
	q := b.Reg(x)
	en := b.Input("en", 1)
	qe := b.RegE(q, en[0])
	b.Output("q", []Net{qe})
	b.Output("mix", []Net{b.Mux(in[0], in[1], qe), b.Low(), b.High()})
	return b.Build()
}

func TestWriteVerilogStructure(t *testing.T) {
	n := buildVerilogSample(t)
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, n); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, want := range []string{
		"module v_sample_1 (",
		"input wire clk",
		"input wire [1:0] data_in",
		"output wire [0:0] q",
		"output wire [2:0] mix",
		"// region: logic",
		"always @(posedge clk)",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("missing %q in output:\n%s", want, v)
		}
	}
	// One always block per flip-flop.
	if got := strings.Count(v, "always @(posedge clk)"); got != 2 {
		t.Fatalf("always blocks = %d, want 2", got)
	}
	// The enabled flop gates on its enable net.
	if !strings.Contains(v, "if (n[") {
		t.Error("DFFE enable missing")
	}
	// Balanced module/endmodule.
	if strings.Count(v, "module ") != 1 || strings.Count(v, "endmodule") != 1 {
		t.Error("module bracketing wrong")
	}
}

func TestWriteVerilogAllCellTypes(t *testing.T) {
	b := NewBuilder("all")
	in := b.Input("i", 3)
	outs := []Net{
		b.Buf(in[0]), b.Not(in[0]),
		b.And(in[0], in[1]), b.Nand(in[0], in[1]),
		b.Or(in[0], in[1]), b.Nor(in[0], in[1]),
		b.Xor(in[0], in[1]), b.Xnor(in[0], in[1]),
		b.Mux(in[0], in[1], in[2]),
		b.Low(), b.High(),
		b.Reg(in[0]), b.RegE(in[0], in[1]),
	}
	b.Output("o", outs)
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, b.Build()); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, op := range []string{" & ", " | ", " ^ ", "~(", " ? ", "1'b0;", "1'b1;"} {
		if !strings.Contains(v, op) {
			t.Errorf("operator %q missing", op)
		}
	}
	if strings.Contains(v, "1'bx") {
		t.Error("unknown cell leaked into output")
	}
}

func TestWriteVerilogPropagatesErrors(t *testing.T) {
	n := buildVerilogSample(t)
	if err := WriteVerilog(failingWriter{}, n); err == nil {
		t.Fatal("write errors must propagate")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("disk full") }

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"aes_core": "aes_core",
		"v 1":      "v_1",
		"9lives":   "_9lives",
		"":         "_",
		"a/b":      "a_b",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
