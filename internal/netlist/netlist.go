// Package netlist provides a small structural gate-level netlist model: a
// cell library, a net/cell graph, and a builder API used by the AES and
// Trojan generators. Regions tag cells with a hierarchical origin so the
// layout engine can cluster them and the experiment harness can report the
// Table I gate-count breakdown.
package netlist

import (
	"fmt"
	"sort"
	"strings"
)

// CellType enumerates the primitive cells of the library.
type CellType int

// The cell library. Arity and semantics are fixed per type; see NumInputs.
const (
	TieLo CellType = iota // constant 0, no inputs
	TieHi                 // constant 1, no inputs
	Buf                   // y = a
	Inv                   // y = !a
	And2                  // y = a & b
	Nand2                 // y = !(a & b)
	Or2                   // y = a | b
	Nor2                  // y = !(a | b)
	Xor2                  // y = a ^ b
	Xnor2                 // y = !(a ^ b)
	Mux2                  // y = s ? b : a  (inputs a, b, s)
	DFF                   // q <- d at clock edge (inputs d)
	DFFE                  // q <- en ? d : q at clock edge (inputs d, en)
	numCellTypes
)

var cellTypeNames = [...]string{
	TieLo: "TIELO", TieHi: "TIEHI", Buf: "BUF", Inv: "INV",
	And2: "AND2", Nand2: "NAND2", Or2: "OR2", Nor2: "NOR2",
	Xor2: "XOR2", Xnor2: "XNOR2", Mux2: "MUX2", DFF: "DFF", DFFE: "DFFE",
}

// String returns the library name of the cell type.
func (t CellType) String() string {
	if t < 0 || int(t) >= len(cellTypeNames) {
		return fmt.Sprintf("CellType(%d)", int(t))
	}
	return cellTypeNames[t]
}

// NumInputs returns the input arity of the cell type.
func (t CellType) NumInputs() int {
	switch t {
	case TieLo, TieHi:
		return 0
	case Buf, Inv, DFF:
		return 1
	case And2, Nand2, Or2, Nor2, Xor2, Xnor2, DFFE:
		return 2
	case Mux2:
		return 3
	default:
		panic(fmt.Sprintf("netlist: unknown cell type %d", int(t)))
	}
}

// IsSequential reports whether the cell type holds state across clock
// edges.
func (t CellType) IsSequential() bool { return t == DFF || t == DFFE }

// GateEquivalents returns the area of the cell type in NAND2-equivalent
// units, loosely following a 180 nm standard-cell library. These weights
// drive the Table I percentages and the layout footprint.
func (t CellType) GateEquivalents() float64 {
	switch t {
	case TieLo, TieHi:
		return 0.5
	case Buf:
		return 0.75
	case Inv:
		return 0.5
	case Nand2, Nor2:
		return 1.0
	case And2, Or2:
		return 1.25
	case Xor2, Xnor2:
		return 2.0
	case Mux2:
		return 2.25
	case DFF:
		return 5.0
	case DFFE:
		return 6.0
	default:
		return 1.0
	}
}

// SwitchingCharge returns the charge in coulombs drawn from the supply
// when the cell's output toggles, loosely calibrated to a 1.8 V 180 nm
// process (tens of femtocoulombs per gate-equivalent). The power model
// multiplies toggle counts by this weight.
func (t CellType) SwitchingCharge() float64 {
	const chargePerGE = 40e-15 // 40 fC per gate equivalent
	return t.GateEquivalents() * chargePerGE
}

// Net identifies a single-bit wire. Net 0 is reserved as "invalid".
type Net int

// InvalidNet is the zero Net; it never names a real wire.
const InvalidNet Net = 0

// Cell is one instance of a library cell.
type Cell struct {
	Type   CellType
	Region string // hierarchical tag, e.g. "aes/sbox0" or "trojan1"
	Inputs []Net
	Output Net
	// Load is extra capacitance on the output net in farads (0 for an
	// ordinary fanout). Pad and antenna drivers set it; the power model
	// adds Load*VDD to the switching charge per toggle.
	Load float64
}

// Port is a named bus of nets at the boundary of the netlist.
type Port struct {
	Name string
	Nets []Net // LSB first
}

// Netlist is an immutable gate-level design produced by a Builder.
type Netlist struct {
	Name    string
	Cells   []Cell
	Inputs  []Port
	Outputs []Port

	numNets int
	driver  []int // per net: driving cell index, -1 = primary input, -2 = unused slot
	inPorts map[string]int
}

// NumNets returns the number of allocated nets, including the reserved
// invalid net 0.
func (n *Netlist) NumNets() int { return n.numNets }

// Driver returns the index of the cell driving net, or -1 when the net is
// a primary input.
func (n *Netlist) Driver(net Net) int { return n.driver[net] }

// InputPort returns the named input port.
func (n *Netlist) InputPort(name string) (Port, bool) {
	i, ok := n.inPorts[name]
	if !ok {
		return Port{}, false
	}
	return n.Inputs[i], true
}

// OutputPort returns the named output port.
func (n *Netlist) OutputPort(name string) (Port, bool) {
	for _, p := range n.Outputs {
		if p.Name == name {
			return p, true
		}
	}
	return Port{}, false
}

// Stats aggregates cell counts and area.
type Stats struct {
	Cells          int
	Sequential     int
	GateEquivalent float64
	ByType         map[CellType]int
}

// Stats returns design-wide statistics for cells whose region has the
// given prefix. An empty prefix selects every cell.
func (n *Netlist) Stats(regionPrefix string) Stats {
	s := Stats{ByType: make(map[CellType]int)}
	for _, c := range n.Cells {
		if !strings.HasPrefix(c.Region, regionPrefix) {
			continue
		}
		s.Cells++
		s.ByType[c.Type]++
		s.GateEquivalent += c.Type.GateEquivalents()
		if c.Type.IsSequential() {
			s.Sequential++
		}
	}
	return s
}

// Regions returns the sorted list of distinct top-level region names
// (the first path segment of each cell's region tag).
func (n *Netlist) Regions() []string {
	seen := make(map[string]bool)
	for _, c := range n.Cells {
		top := c.Region
		if i := strings.IndexByte(top, '/'); i >= 0 {
			top = top[:i]
		}
		seen[top] = true
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// StuckAt returns a copy of the netlist with the driver of net replaced
// by a constant tie cell — a stuck-at fault. Primary inputs cannot be
// stuck this way. The copy shares unmodified cell data with the
// original, which must not be mutated afterwards.
func (n *Netlist) StuckAt(net Net, value bool) (*Netlist, error) {
	if net <= InvalidNet || int(net) >= n.numNets {
		return nil, fmt.Errorf("netlist: stuck-at on invalid net %d", net)
	}
	d := n.driver[net]
	if d < 0 {
		return nil, fmt.Errorf("netlist: net %d has no driving cell (primary input?)", net)
	}
	cells := make([]Cell, len(n.Cells))
	copy(cells, n.Cells)
	t := TieLo
	if value {
		t = TieHi
	}
	cells[d] = Cell{Type: t, Region: n.Cells[d].Region, Output: net}
	out := &Netlist{
		Name:    n.Name + "_sa",
		Cells:   cells,
		Inputs:  n.Inputs,
		Outputs: n.Outputs,
		numNets: n.numNets,
		driver:  n.driver,
		inPorts: n.inPorts,
	}
	if err := out.Check(); err != nil {
		return nil, err
	}
	return out, nil
}

// Check validates structural invariants: every cell input is a driven,
// valid net; every net has at most one driver; arities match cell types.
// It returns the first violation found, or nil.
func (n *Netlist) Check() error {
	for i, c := range n.Cells {
		if got, want := len(c.Inputs), c.Type.NumInputs(); got != want {
			return fmt.Errorf("netlist %s: cell %d (%v) has %d inputs, want %d", n.Name, i, c.Type, got, want)
		}
		if c.Output <= InvalidNet || int(c.Output) >= n.numNets {
			return fmt.Errorf("netlist %s: cell %d (%v) drives invalid net %d", n.Name, i, c.Type, c.Output)
		}
		for k, in := range c.Inputs {
			if in <= InvalidNet || int(in) >= n.numNets {
				return fmt.Errorf("netlist %s: cell %d (%v) input %d is invalid net %d", n.Name, i, c.Type, k, in)
			}
			if n.driver[in] == -2 {
				return fmt.Errorf("netlist %s: cell %d (%v) input %d reads undriven net %d", n.Name, i, c.Type, k, in)
			}
		}
	}
	for _, p := range n.Outputs {
		for k, net := range p.Nets {
			if net <= InvalidNet || int(net) >= n.numNets || n.driver[net] == -2 {
				return fmt.Errorf("netlist %s: output %s[%d] reads invalid or undriven net %d", n.Name, p.Name, k, net)
			}
		}
	}
	return nil
}
