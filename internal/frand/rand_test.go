package frand

import (
	"math/rand"
	"testing"
)

// TestRandMatchesMathRand drives every Rand method the repo draws from
// against *math/rand.Rand with the same seeds, interleaving methods so
// stream consumption stays aligned — any divergence in values consumed
// per call would desynchronize everything after it and fail loudly.
func TestRandMatchesMathRand(t *testing.T) {
	for _, seed := range testSeeds {
		got := NewRand(seed)
		want := rand.New(rand.NewSource(seed))
		for i := 0; i < 4000; i++ {
			switch i % 7 {
			case 0:
				if g, w := got.NormFloat64(), want.NormFloat64(); g != w {
					t.Fatalf("seed %d draw %d: NormFloat64 %v != %v", seed, i, g, w)
				}
			case 1:
				if g, w := got.Float64(), want.Float64(); g != w {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, g, w)
				}
			case 2:
				if g, w := got.Intn(97), want.Intn(97); g != w {
					t.Fatalf("seed %d draw %d: Intn(97) %d != %d", seed, i, g, w)
				}
			case 3:
				if g, w := got.Intn(64), want.Intn(64); g != w {
					t.Fatalf("seed %d draw %d: Intn(64) %d != %d", seed, i, g, w)
				}
			case 4:
				if g, w := got.Int63(), want.Int63(); g != w {
					t.Fatalf("seed %d draw %d: Int63 %d != %d", seed, i, g, w)
				}
			case 5:
				if g, w := got.Uint64(), want.Uint64(); g != w {
					t.Fatalf("seed %d draw %d: Uint64 %d != %d", seed, i, g, w)
				}
			case 6:
				if g, w := got.Int63n(12345), want.Int63n(12345); g != w {
					t.Fatalf("seed %d draw %d: Int63n %d != %d", seed, i, g, w)
				}
			}
		}
		// Reseed in place and confirm realignment.
		got.Seed(seed + 1)
		want = rand.New(rand.NewSource(seed + 1))
		for i := 0; i < 64; i++ {
			if g, w := got.NormFloat64(), want.NormFloat64(); g != w {
				t.Fatalf("seed %d post-reseed draw %d: %v != %v", seed, i, g, w)
			}
		}
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := NewRand(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}

func BenchmarkNormFloat64MathRand(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
