package frand

import "math"

// Rand is a concrete replica of *math/rand.Rand over a Source: every
// method reproduces math/rand's algorithm operation for operation, so
// the value streams are bit-identical for any seed — the difference is
// purely mechanical. math/rand layers each draw through an interface
// hop to its source; here the source is embedded, so Float64 and
// NormFloat64 compile down to direct array arithmetic, which matters
// when the acquisition path draws one normal variate per trace sample.
//
// Not safe for concurrent use.
type Rand struct {
	src Source
}

// NewRand returns a generator seeded like rand.New(rand.NewSource(seed)).
func NewRand(seed int64) *Rand {
	r := new(Rand)
	r.src.Seed(seed)
	return r
}

// Seed resets the generator to the deterministic state for seed.
func (r *Rand) Seed(seed int64) { r.src.Seed(seed) }

// Int63 returns a non-negative 63-bit integer.
func (r *Rand) Int63() int64 { return int64(r.src.Uint64() & rngMask) }

// Uint64 returns the next 64-bit value.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Uint32 returns a 32-bit value, consuming one Int63 like math/rand.
func (r *Rand) Uint32() uint32 { return uint32(r.Int63() >> 31) }

// Int31 returns a non-negative 31-bit integer.
func (r *Rand) Int31() int32 { return int32(r.Int63() >> 32) }

// Int63n returns a non-negative integer in [0, n). Panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("invalid argument to Int63n")
	}
	if n&(n-1) == 0 {
		return r.Int63() & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.Int63()
	for v > max {
		v = r.Int63()
	}
	return v % n
}

// Int31n returns a non-negative integer in [0, n). Panics if n <= 0.
func (r *Rand) Int31n(n int32) int32 {
	if n <= 0 {
		panic("invalid argument to Int31n")
	}
	if n&(n-1) == 0 {
		return r.Int31() & (n - 1)
	}
	max := int32((1 << 31) - 1 - (1<<31)%uint32(n))
	v := r.Int31()
	for v > max {
		v = r.Int31()
	}
	return v % n
}

// Intn returns a non-negative integer in [0, n). Panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("invalid argument to Intn")
	}
	if n <= 1<<31-1 {
		return int(r.Int31n(int32(n)))
	}
	return int(r.Int63n(int64(n)))
}

// Float64 returns a value in [0, 1), preserving math/rand's Go 1
// stream (Int63 divided by 2⁶³, resampling the 1.0 rounding case).
func (r *Rand) Float64() float64 {
again:
	f := float64(r.Int63()) / (1 << 63)
	if f == 1 {
		goto again // resample; this branch is taken O(never)
	}
	return f
}

const rn = 3.442619855899

func absInt32(i int32) uint32 {
	if i < 0 {
		return uint32(-i)
	}
	return uint32(i)
}

// NormFloat64 returns a standard normal variate via the same ziggurat
// (Marsaglia & Tsang) walk as math/rand, value stream included.
func (r *Rand) NormFloat64() float64 {
	for {
		j := int32(r.Uint32()) // Possibly negative
		i := j & 0x7F
		x := float64(j) * float64(wn[i])
		if absInt32(j) < kn[i] {
			// This case should be hit better than 99% of the time.
			return x
		}

		if i == 0 {
			// This extra work is only required for the base strip.
			for {
				x = -math.Log(r.Float64()) * (1.0 / rn)
				y := -math.Log(r.Float64())
				if y+y >= x*x {
					break
				}
			}
			if j > 0 {
				return rn + x
			}
			return -rn - x
		}
		if fn[i]+float32(r.Float64())*(fn[i-1]-fn[i]) < float32(math.Exp(-.5*x*x)) {
			return x
		}
	}
}
