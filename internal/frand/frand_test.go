package frand

import (
	"math/rand"
	"testing"
)

var testSeeds = []int64{
	0, 1, -1, 2, 13, 89482311, int32max - 1, int32max, int32max + 1,
	-89482311, 1 << 40, -(1 << 40), 7919, 1<<62 + 12345, -9034,
}

// TestSourceMatchesMathRand is the package's contract: for any seed,
// the raw Uint64/Int63 stream is bit-identical to math/rand's source.
func TestSourceMatchesMathRand(t *testing.T) {
	var s Source
	for _, seed := range testSeeds {
		ref := rand.NewSource(seed).(rand.Source64)
		s.Seed(seed)
		for i := 0; i < 3000; i++ {
			if got, want := s.Uint64(), ref.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: Uint64 %d != math/rand %d", seed, i, got, want)
			}
		}
		// Int63 path too — same stream, masked.
		ref2 := rand.NewSource(seed)
		s.Seed(seed)
		for i := 0; i < 100; i++ {
			if got, want := s.Int63(), ref2.Int63(); got != want {
				t.Fatalf("seed %d draw %d: Int63 %d != math/rand %d", seed, i, got, want)
			}
		}
	}
}

// TestRandOverSourceMatches drives the distributions the fleet's
// acquisition path actually consumes — Float64, NormFloat64, Intn —
// through rand.Rand over both sources and demands identical values.
func TestRandOverSourceMatches(t *testing.T) {
	var s Source
	got := rand.New(&s)
	for _, seed := range testSeeds {
		want := rand.New(rand.NewSource(seed))
		got.Seed(seed)
		for i := 0; i < 2000; i++ {
			switch i % 3 {
			case 0:
				if g, w := got.NormFloat64(), want.NormFloat64(); g != w {
					t.Fatalf("seed %d draw %d: NormFloat64 %v != %v", seed, i, g, w)
				}
			case 1:
				if g, w := got.Float64(), want.Float64(); g != w {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, g, w)
				}
			case 2:
				if g, w := got.Intn(97), want.Intn(97); g != w {
					t.Fatalf("seed %d draw %d: Intn %d != %d", seed, i, g, w)
				}
			}
		}
	}
}

// TestReseedMidStream checks the fleet's actual usage pattern: one
// long-lived rand.Rand reseeded in place between short draw bursts.
func TestReseedMidStream(t *testing.T) {
	var s Source
	got := rand.New(&s)
	for trial := 0; trial < 50; trial++ {
		seed := int64(trial*7919 - 3)
		got.Seed(seed)
		want := rand.New(rand.NewSource(seed))
		for i := 0; i < 17; i++ {
			if g, w := got.NormFloat64(), want.NormFloat64(); g != w {
				t.Fatalf("trial %d draw %d: %v != %v", trial, i, g, w)
			}
		}
	}
}

func BenchmarkSeed(b *testing.B) {
	var s Source
	for i := 0; i < b.N; i++ {
		s.Seed(int64(i))
	}
}

func BenchmarkSeedMathRand(b *testing.B) {
	src := rand.NewSource(0)
	for i := 0; i < b.N; i++ {
		src.Seed(int64(i))
	}
}
