package analog

import (
	"math"
	"testing"
)

// run drives the Trojan with a victim wire toggling at the given period
// (one rising edge per period cycles) for n cycles and returns whether it
// ever fired.
func run(a *A2, period, n int) bool {
	fired := false
	for i := 0; i < n; i++ {
		var v uint8
		if period > 0 && (i%period) < (period+1)/2 {
			v = 1
		}
		res := a.Step(v)
		if res.Firing {
			fired = true
		}
	}
	return fired
}

func TestA2FiresOnFastToggling(t *testing.T) {
	a := NewA2(DefaultA2Config())
	if !run(a, 2, 1000) {
		t.Fatal("A2 must fire on a divide-by-2 clock signal")
	}
}

func TestA2IgnoresSlowToggling(t *testing.T) {
	for _, period := range []int{8, 16, 64} {
		a := NewA2(DefaultA2Config())
		if run(a, period, 20000) {
			t.Fatalf("A2 fired on slow toggling (period %d) — the stealth property is broken", period)
		}
	}
}

func TestA2IgnoresConstantWire(t *testing.T) {
	a := NewA2(DefaultA2Config())
	for i := 0; i < 5000; i++ {
		if a.Step(1).Firing {
			t.Fatal("A2 fired on a constant-high wire")
		}
	}
	if a.Voltage() > a.Config().ChargePerEdge {
		t.Fatal("a single rising edge must not accumulate")
	}
}

func TestA2DecaysAndReleases(t *testing.T) {
	a := NewA2(DefaultA2Config())
	run(a, 2, 1000)
	if !a.Firing() {
		t.Fatal("precondition: A2 firing")
	}
	// Starve the pump: the capacitor leaks down through hysteresis.
	for i := 0; i < 2000 && a.Firing(); i++ {
		a.Step(0)
	}
	if a.Firing() {
		t.Fatal("A2 never released after the victim went quiet")
	}
	if a.Voltage() >= a.Config().Hysteresis {
		t.Fatal("voltage did not decay below hysteresis")
	}
}

func TestA2ChargeAccounting(t *testing.T) {
	cfg := DefaultA2Config()
	a := NewA2(cfg)
	res := a.Step(1) // rising edge
	if !res.Pumped {
		t.Fatal("rising edge must pump")
	}
	if res.Charge != cfg.PumpCharge {
		t.Fatalf("pump charge = %g, want %g", res.Charge, cfg.PumpCharge)
	}
	res = a.Step(1) // level high, no edge
	if res.Pumped || res.Charge != 0 {
		t.Fatalf("no edge must draw nothing, got %+v", res)
	}
}

func TestA2FastTogglesWhileFiring(t *testing.T) {
	cfg := DefaultA2Config()
	a := NewA2(cfg)
	run(a, 2, 1000)
	a.Step(1)        // may include a pump edge
	res := a.Step(1) // level high: firing current only
	if !res.Firing {
		t.Fatal("expected firing")
	}
	if res.FastToggles != cfg.TriggerTogglesPerCycle {
		t.Fatalf("FastToggles = %d, want %d", res.FastToggles, cfg.TriggerTogglesPerCycle)
	}
	wantCharge := cfg.TriggerCharge * float64(cfg.TriggerTogglesPerCycle)
	if math.Abs(res.Charge-wantCharge) > 1e-20 {
		t.Fatalf("firing charge = %g, want %g", res.Charge, wantCharge)
	}
	if a.FireCount() == 0 {
		t.Fatal("FireCount not accumulating")
	}
}

func TestA2Reset(t *testing.T) {
	a := NewA2(DefaultA2Config())
	run(a, 2, 1000)
	a.Reset()
	if a.Voltage() != 0 || a.Firing() || a.FireCount() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestA2MaxVoltage(t *testing.T) {
	a := NewA2(DefaultA2Config())
	// Fast toggling must clear the threshold, slow must not.
	if a.MaxVoltage(2) < a.Config().Threshold {
		t.Fatal("divide-by-2 steady state below threshold")
	}
	if a.MaxVoltage(8) > a.Config().Threshold/2 {
		t.Fatal("period-8 steady state should be well below threshold")
	}
	if a.MaxVoltage(0) != 0 {
		t.Fatal("period 0 must give 0")
	}
}

func TestA2ConfigValidation(t *testing.T) {
	bad := DefaultA2Config()
	bad.ChargePerEdge = 0
	mustPanic(t, func() { NewA2(bad) })
	bad = DefaultA2Config()
	bad.LeakPerCycle = 1
	mustPanic(t, func() { NewA2(bad) })
	bad = DefaultA2Config()
	bad.Hysteresis = bad.Threshold + 1
	mustPanic(t, func() { NewA2(bad) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
