// Package analog models the A2-style analog hardware Trojan (Yang et al.,
// S&P 2016) that the paper simulates: a six-transistor charge pump that
// siphons charge from a victim wire's toggles onto a capacitor and fires
// its payload only when the wire toggles fast enough for the accumulated
// voltage to beat the leakage. Digital side-channel detectors miss it; the
// paper detects the fast-flipping trigger activity in the EM spectrum
// (Section III-E, Figure 4).
package analog

import "fmt"

// A2Config sets the electrical behaviour of the charge-pump trigger.
type A2Config struct {
	// ChargePerEdge is the capacitor voltage step added by one rising
	// edge of the victim wire (volts).
	ChargePerEdge float64
	// LeakPerCycle is the fraction of the capacitor voltage lost per
	// clock cycle to the intentional leakage path. It sets the minimum
	// toggle rate that can ever fire the Trojan.
	LeakPerCycle float64
	// Threshold is the Schmitt-trigger detect voltage (volts).
	Threshold float64
	// Hysteresis is the release voltage below which the trigger drops
	// out again (volts); must be below Threshold.
	Hysteresis float64
	// PumpCharge is the supply charge drawn per pump event (coulombs);
	// tiny, which is what makes A2 invisible to power fingerprinting.
	PumpCharge float64
	// TriggerCharge is the supply charge drawn per fast flip of the
	// trigger/retention stage while the Trojan is firing (coulombs).
	TriggerCharge float64
	// TriggerTogglesPerCycle is how many times the trigger stage flips
	// per clock cycle while firing; >1 creates the "extra frequency
	// spots or increased amplitude" of Section III-E.
	TriggerTogglesPerCycle int
	// AreaGE is the Trojan's area in NAND2 gate equivalents. The six
	// transistors are tiny, but the charge-pump capacitor dominates:
	// the paper reports 0.087% of the AES circuit area, which at this
	// repository's AES size corresponds to ~34 GE of silicon.
	AreaGE float64
}

// DefaultA2Config returns the configuration used in the experiments:
// tuned so a wire toggling every other cycle (a clock-division signal)
// fires the Trojan within a few hundred cycles, while toggles spaced 10+
// cycles apart never accumulate.
func DefaultA2Config() A2Config {
	return A2Config{
		ChargePerEdge:          0.05,
		LeakPerCycle:           0.02,
		Threshold:              1.0,
		Hysteresis:             0.6,
		PumpCharge:             2e-15,
		TriggerCharge:          8e-12,
		TriggerTogglesPerCycle: 2,
		AreaGE:                 34,
	}
}

// A2 is one instance of the analog Trojan attached to a victim wire.
type A2 struct {
	cfg       A2Config
	v         float64 // capacitor voltage
	prev      uint8   // previous victim value
	firing    bool
	fireCount int
}

// NewA2 creates an A2 Trojan with the given electrical configuration.
// It panics if the configuration is not physical (a programming error).
func NewA2(cfg A2Config) *A2 {
	if cfg.ChargePerEdge <= 0 || cfg.LeakPerCycle < 0 || cfg.LeakPerCycle >= 1 {
		panic(fmt.Sprintf("analog: invalid A2 config %+v", cfg))
	}
	if cfg.Hysteresis > cfg.Threshold {
		panic("analog: A2 hysteresis above threshold")
	}
	return &A2{cfg: cfg}
}

// Config returns the Trojan's configuration.
func (a *A2) Config() A2Config { return a.cfg }

// Voltage returns the current capacitor voltage.
func (a *A2) Voltage() float64 { return a.v }

// Firing reports whether the payload is currently asserted.
func (a *A2) Firing() bool { return a.firing }

// FireCount returns how many cycles the Trojan has spent firing.
func (a *A2) FireCount() int { return a.fireCount }

// Reset discharges the capacitor and clears the payload.
func (a *A2) Reset() {
	a.v = 0
	a.prev = 0
	a.firing = false
	a.fireCount = 0
}

// CycleResult reports what the Trojan did during one clock cycle; the
// power model turns it into supply current.
type CycleResult struct {
	// Pumped is true when a rising victim edge pumped the capacitor.
	Pumped bool
	// Charge is the total supply charge drawn this cycle (coulombs).
	Charge float64
	// FastToggles is the number of trigger-stage flips this cycle (0
	// while dormant); each flip happens at an even sub-cycle phase, so
	// the resulting current rides at a multiple of the clock.
	FastToggles int
	// Firing reports the payload state after this cycle.
	Firing bool
}

// Step advances the Trojan by one clock cycle given the victim wire's
// settled value this cycle.
func (a *A2) Step(victim uint8) CycleResult {
	var res CycleResult
	if victim != 0 {
		victim = 1
	}
	if victim == 1 && a.prev == 0 {
		a.v += a.cfg.ChargePerEdge
		res.Pumped = true
		res.Charge += a.cfg.PumpCharge
	}
	a.prev = victim
	a.v *= 1 - a.cfg.LeakPerCycle

	switch {
	case !a.firing && a.v >= a.cfg.Threshold:
		a.firing = true
	case a.firing && a.v < a.cfg.Hysteresis:
		a.firing = false
	}
	if a.firing {
		a.fireCount++
		res.FastToggles = a.cfg.TriggerTogglesPerCycle
		res.Charge += a.cfg.TriggerCharge * float64(res.FastToggles)
	}
	res.Firing = a.firing
	return res
}

// MaxVoltage returns the steady-state capacitor voltage reached when the
// victim toggles once per period cycles: charge/period balancing leak.
// Useful for choosing configurations in tests and experiments.
func (a *A2) MaxVoltage(period int) float64 {
	if period <= 0 {
		return 0
	}
	// One edge adds ChargePerEdge, then period cycles of decay; solve
	// the geometric fixed point v = (v + c) * (1-l)^period.
	decay := 1.0
	for i := 0; i < period; i++ {
		decay *= 1 - a.cfg.LeakPerCycle
	}
	if decay >= 1 {
		return 0
	}
	return a.cfg.ChargePerEdge * decay / (1 - decay)
}
