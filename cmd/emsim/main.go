// Command emsim runs one EM capture on the virtual chip and writes the
// sensor and probe traces (and optionally their spectra) as CSV, for
// plotting with any external tool.
//
// Usage:
//
//	emsim [-cycles n] [-trojan 0..4] [-a2] [-idle] [-spectrum] [-o dir]
//	      [-cpuprofile f] [-memprofile f]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"emtrust/internal/chip"
	"emtrust/internal/dsp"
	"emtrust/internal/trojan"
)

func main() {
	cycles := flag.Int("cycles", 64, "clock cycles to capture")
	trojanID := flag.Int("trojan", 0, "digital Trojan to activate (1-4, 0 = none)")
	a2 := flag.Bool("a2", false, "enable the A2 analog Trojan")
	idle := flag.Bool("idle", false, "capture without encrypting")
	spectrum := flag.Bool("spectrum", false, "also write one-sided amplitude spectra")
	outDir := flag.String("o", ".", "output directory")
	seed := flag.Int64("seed", 1, "random seed")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the capture to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the capture) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
	}
	err := run(*cycles, *trojanID, *a2, *idle, *spectrum, *outDir, *seed)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		runtime.GC() // materialize the retained heap
		f, ferr := os.Create(*memprofile)
		if ferr != nil {
			log.Fatal(ferr)
		}
		if werr := pprof.WriteHeapProfile(f); werr != nil {
			log.Fatal(werr)
		}
		f.Close()
	}
	if err != nil {
		log.Fatal(err)
	}
}

// run performs the capture and CSV writes, returning instead of exiting
// so main can flush profiles on every path.
func run(cycles int, trojanID int, a2, idle, spectrum bool, outDir string, seed int64) error {
	cfg := chip.DefaultConfig()
	cfg.Seed = seed
	c, err := chip.New(cfg)
	if err != nil {
		return err
	}
	if err := c.DeactivateAll(); err != nil {
		return err
	}
	c.EnableA2(a2)
	if trojanID != 0 {
		k := trojan.Kind(trojanID)
		if err := c.SetTrojan(k, true); err != nil {
			return err
		}
		log.Printf("activated %v: %s", k, k.Description())
	}
	if a2 {
		// Warm the charge pump so the capture shows the firing state.
		if _, err := c.CaptureIdle(600); err != nil {
			return err
		}
		log.Printf("A2 firing: %v (V=%.2f)", c.A2().Firing(), c.A2().Voltage())
	}

	var cap *chip.Capture
	if idle {
		cap, err = c.CaptureIdle(cycles)
	} else {
		key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
		cap, err = c.Capture(key, cycles)
	}
	if err != nil {
		return err
	}
	sensor, probe := c.Acquire(cap, chip.MeasurementChannels())

	write := func(name, content string) error {
		path := filepath.Join(outDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		log.Printf("wrote %s", path)
		return nil
	}
	if err := write("sensor.csv", sensor.CSV()); err != nil {
		return err
	}
	if err := write("probe.csv", probe.CSV()); err != nil {
		return err
	}

	if spectrum {
		for name, tr := range map[string]*struct {
			samples []float64
			dt      float64
		}{
			"sensor_spectrum.csv": {sensor.Samples, sensor.Dt},
			"probe_spectrum.csv":  {probe.Samples, probe.Dt},
		} {
			s := dsp.NewSpectrum(tr.samples, tr.dt, dsp.Hann)
			var sb strings.Builder
			sb.WriteString("frequency_hz,amplitude_v\n")
			for k, a := range s.Amplitude {
				fmt.Fprintf(&sb, "%.6e,%.6e\n", s.Frequency(k), a)
			}
			if err := write(name, sb.String()); err != nil {
				return err
			}
		}
	}
	return nil
}
