// Command emsim runs one EM capture on the virtual chip and writes the
// sensor and probe traces (and optionally their spectra) as CSV, for
// plotting with any external tool.
//
// Usage:
//
//	emsim [-cycles n] [-trojan 0..4] [-a2] [-idle] [-spectrum] [-o dir]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"emtrust/internal/chip"
	"emtrust/internal/dsp"
	"emtrust/internal/trojan"
)

func main() {
	cycles := flag.Int("cycles", 64, "clock cycles to capture")
	trojanID := flag.Int("trojan", 0, "digital Trojan to activate (1-4, 0 = none)")
	a2 := flag.Bool("a2", false, "enable the A2 analog Trojan")
	idle := flag.Bool("idle", false, "capture without encrypting")
	spectrum := flag.Bool("spectrum", false, "also write one-sided amplitude spectra")
	outDir := flag.String("o", ".", "output directory")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cfg := chip.DefaultConfig()
	cfg.Seed = *seed
	c, err := chip.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.DeactivateAll(); err != nil {
		log.Fatal(err)
	}
	c.EnableA2(*a2)
	if *trojanID != 0 {
		k := trojan.Kind(*trojanID)
		if err := c.SetTrojan(k, true); err != nil {
			log.Fatal(err)
		}
		log.Printf("activated %v: %s", k, k.Description())
	}
	if *a2 {
		// Warm the charge pump so the capture shows the firing state.
		if _, err := c.CaptureIdle(600); err != nil {
			log.Fatal(err)
		}
		log.Printf("A2 firing: %v (V=%.2f)", c.A2().Firing(), c.A2().Voltage())
	}

	var cap *chip.Capture
	if *idle {
		cap, err = c.CaptureIdle(*cycles)
	} else {
		key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
		cap, err = c.Capture(key, *cycles)
	}
	if err != nil {
		log.Fatal(err)
	}
	sensor, probe := c.Acquire(cap, chip.MeasurementChannels())

	write := func(name, content string) {
		path := filepath.Join(*outDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", path)
	}
	write("sensor.csv", sensor.CSV())
	write("probe.csv", probe.CSV())

	if *spectrum {
		for name, tr := range map[string]*struct {
			samples []float64
			dt      float64
		}{
			"sensor_spectrum.csv": {sensor.Samples, sensor.Dt},
			"probe_spectrum.csv":  {probe.Samples, probe.Dt},
		} {
			s := dsp.NewSpectrum(tr.samples, tr.dt, dsp.Hann)
			var sb strings.Builder
			sb.WriteString("frequency_hz,amplitude_v\n")
			for k, a := range s.Amplitude {
				fmt.Fprintf(&sb, "%.6e,%.6e\n", s.Frequency(k), a)
			}
			write(name, sb.String())
		}
	}
}
