// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run id] [-scale f] [-seed n] [-cpuprofile f] [-memprofile f]
//
// where id is one of: all, table1, snr-sim, snr-measured, euclid-sim,
// a2-spectrum, fig6-probe, fig6-sensor, fig6-spectra, layout. The scale
// factor multiplies the trace counts (use >= 5 for smooth histograms;
// the defaults favor quick runs). The -cpuprofile and -memprofile flags
// write pprof profiles of the selected experiments, so performance work
// can grab profiles of any workload without code edits.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"emtrust/internal/experiments"
)

type runner struct {
	id   string
	desc string
	fn   func(experiments.Config) (fmt.Stringer, error)
}

func runners() []runner {
	return []runner{
		{"table1", "Table I: Trojan sizes vs the AES design", func(c experiments.Config) (fmt.Stringer, error) { return experiments.Table1(c) }},
		{"snr-sim", "Section IV-B: simulated sensor vs probe SNR", func(c experiments.Config) (fmt.Stringer, error) { return experiments.SNRSimulation(c) }},
		{"snr-measured", "Section V-A: measured sensor vs probe SNR", func(c experiments.Config) (fmt.Stringer, error) { return experiments.SNRMeasured(c) }},
		{"euclid-sim", "Section IV-C: Euclidean distances per Trojan", func(c experiments.Config) (fmt.Stringer, error) { return experiments.EuclideanSimulation(c) }},
		{"a2-spectrum", "Figure 4: A2 Trojan in the frequency domain", func(c experiments.Config) (fmt.Stringer, error) { return experiments.A2Spectrum(c) }},
		{"fig6-probe", "Figure 6(a)-(d): external probe histograms", func(c experiments.Config) (fmt.Stringer, error) { return experiments.Fig6Histograms(c, false) }},
		{"fig6-sensor", "Figure 6(e)-(h): on-chip sensor histograms", func(c experiments.Config) (fmt.Stringer, error) { return experiments.Fig6Histograms(c, true) }},
		{"fig6-spectra", "Figure 6(i)-(l): sensor spectra per Trojan", func(c experiments.Config) (fmt.Stringer, error) { return experiments.Fig6Spectra(c) }},
		{"layout", "Figure 3: floorplan with the on-chip sensor", func(c experiments.Config) (fmt.Stringer, error) { return experiments.LayoutReport(c) }},
		{"coverage", "Extension: EM framework vs ring-oscillator-network baseline", func(c experiments.Config) (fmt.Stringer, error) { return experiments.Coverage(c) }},
		{"localize", "Extension: Trojan localization with quadrant spirals", func(c experiments.Config) (fmt.Stringer, error) { return experiments.Localize(c) }},
		{"variation", "Extension: golden-chip vs self-referenced fingerprints under process variation", func(c experiments.Config) (fmt.Stringer, error) { return experiments.Variation(c) }},
		{"robustness", "Extension: detection vs environment noise sweep", func(c experiments.Config) (fmt.Stringer, error) { return experiments.Robustness(c) }},
		{"faults", "Extension: stuck-at fault detectability (EM vs functional test)", func(c experiments.Config) (fmt.Stringer, error) { return experiments.Faults(c) }},
		{"degradation", "Extension: acquisition-chain faults, naive vs hardened monitor", func(c experiments.Config) (fmt.Stringer, error) { return experiments.Degradation(c) }},
		{"localization", "Extension: golden-model-free detection and localization with the sensor array", func(c experiments.Config) (fmt.Stringer, error) { return experiments.Localization(c) }},
		{"fleet", "Extension: population-scale monitoring with FDR-controlled fleet alarms", func(c experiments.Config) (fmt.Stringer, error) { return experiments.Fleet(c) }},
		{"campaign", "Extension: generated Trojan campaign with ROC sweeps and stimulus search", func(c experiments.Config) (fmt.Stringer, error) { return experiments.Campaign(c) }},
	}
}

func main() {
	runID := flag.String("run", "all", "experiment id or 'all'")
	scale := flag.Float64("scale", 1, "trace-count multiplier")
	seed := flag.Int64("seed", 1, "random seed for chips and noise")
	list := flag.Bool("list", false, "list experiment ids and exit")
	htmlOut := flag.String("html", "", "also write an HTML report (tables + SVG figures) to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the experiments to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the experiments) to this file")
	flag.Parse()

	if *list {
		for _, r := range runners() {
			fmt.Printf("%-14s %s\n", r.id, r.desc)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	code := run(*runID, *scale, *seed, *htmlOut)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		runtime.GC() // materialize the retained heap
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
	}
	os.Exit(code)
}

// run executes the selected experiments and returns the process exit
// code, so main can flush profiles on every path.
func run(runID string, scale float64, seed int64, htmlOut string) int {
	cfg := experiments.DefaultConfig().Scaled(scale)
	cfg.Chip.Seed = seed

	ran := 0
	for _, r := range runners() {
		if runID != "all" && runID != r.id {
			continue
		}
		ran++
		start := time.Now()
		res, err := r.fn(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.id, err)
			return 1
		}
		fmt.Printf("=== %s — %s (%.1fs) ===\n%s\n", r.id, r.desc, time.Since(start).Seconds(), res)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", runID)
		return 2
	}
	if htmlOut != "" {
		f, err := os.Create(htmlOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := experiments.WriteHTMLReport(cfg, f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("wrote %s\n", htmlOut)
	}
	return 0
}
