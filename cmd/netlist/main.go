// Command netlist inspects and exports the generated gate-level designs:
// cell statistics per region, the ASCII floorplan, structural Verilog
// for external EDA flows, and generated Trojan campaigns.
//
// Usage:
//
//	netlist [-golden] [-seed n] [-stats] [-floorplan] [-verilog out.v]
//	        [-campaign n] [-member i] [-search gens]
//
// With -campaign n, a campaign of n rare-trigger Trojans is generated
// against the golden design and listed; -member i selects one member
// and builds the infected chip, composing with -stats, -floorplan, and
// -verilog (so an infected netlist can be exported for external tools).
// -search runs the coverage-guided stimulus search against the selected
// member for the given number of generations and exits nonzero if it
// finds no partial-trigger coverage at all (the CI smoke check).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"emtrust/internal/campaign"
	"emtrust/internal/chip"
	"emtrust/internal/netlist"
)

func main() {
	golden := flag.Bool("golden", false, "build the Trojan-free chip")
	seed := flag.Int64("seed", 1, "chip and campaign seed (reproducible builds)")
	stats := flag.Bool("stats", true, "print per-region cell statistics")
	floorplan := flag.Bool("floorplan", false, "print the ASCII floorplan")
	verilog := flag.String("verilog", "", "write structural Verilog to this file")
	campaignN := flag.Int("campaign", 0, "generate a campaign of this many Trojans against the golden design")
	member := flag.Int("member", -1, "select one campaign member and build the infected chip")
	searchGens := flag.Int("search", 0, "run the stimulus search on the selected member for this many generations")
	flag.Parse()

	cfg := chip.DefaultConfig()
	cfg.Seed = *seed
	if *golden || *campaignN > 0 {
		cfg.WithTrojans = false
		cfg.WithA2 = false
	}

	var selected *campaign.Member
	var stim campaign.Stimulus
	if *campaignN > 0 {
		goldenChip, err := chip.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		gn, gfp := goldenChip.Netlist(), goldenChip.Floorplan()
		gen := campaign.DefaultConfig()
		gen.Seed = *seed
		gen.Members = *campaignN
		stim = campaign.AESStimulus()
		camp, err := campaign.Generate(gn, stim,
			func(v netlist.Net) int { return gfp.Grid.CellTile[gn.Driver(v)] }, gen)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("campaign seed %d, %d members, hash %016x\n", *seed, len(camp.Members), camp.Hash())
		fmt.Printf("%-8s %2s %8s %12s %7s %5s\n", "member", "k", "rarity", "trigger p", "victim", "tile")
		for _, m := range camp.Members {
			fmt.Printf("%-8s %2d %8.2g %12.3g %7d %5d\n",
				m.InsertName(), m.K, m.RarityMax, m.TriggerProb, m.Victim, m.VictimTile)
		}
		if *member >= 0 {
			if *member >= len(camp.Members) {
				log.Fatalf("member %d out of range (campaign has %d)", *member, len(camp.Members))
			}
			selected = camp.Members[*member]
			cfg.Insert = selected
		}
	} else if *member >= 0 || *searchGens > 0 {
		log.Fatal("-member and -search require -campaign")
	}

	c, err := chip.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	n := c.Netlist()

	if *stats {
		total := n.Stats("")
		fmt.Printf("design %s: %d cells, %.0f gate equivalents, %d flip-flops\n",
			n.Name, total.Cells, total.GateEquivalent, total.Sequential)
		for _, region := range n.Regions() {
			s := n.Stats(region)
			fmt.Printf("  %-10s %6d cells %9.0f GE\n", region, s.Cells, s.GateEquivalent)
		}
		fmt.Printf("cell mix:\n")
		type kv struct {
			t netlist.CellType
			n int
		}
		var mix []kv
		for t, cnt := range total.ByType {
			mix = append(mix, kv{t, cnt})
		}
		sort.Slice(mix, func(i, j int) bool { return mix[i].n > mix[j].n })
		for _, m := range mix {
			fmt.Printf("  %-6v %6d\n", m.t, m.n)
		}
	}
	if *floorplan {
		fmt.Print(c.Floorplan().Render(72, 24))
	}
	if *verilog != "" {
		f, err := os.Create(*verilog)
		if err != nil {
			log.Fatal(err)
		}
		if err := netlist.WriteVerilog(f, n); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *verilog)
	}

	if *searchGens > 0 {
		if selected == nil {
			log.Fatal("-search requires -member")
		}
		e, err := campaign.NewEvaluator(n, stim, selected, 0)
		if err != nil {
			log.Fatal(err)
		}
		res, err := campaign.Search(e, campaign.GA{}, 32, *searchGens,
			campaign.SearchSeed(*seed, selected.ID))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("search %s on %s: best %d/%d trigger terms (%.0f%%), %d full activations in %d evals\n",
			res.Searcher, selected.InsertName(), res.BestScore, selected.K,
			100*res.BestFrac, res.FullLanes, res.Evals)
		if res.BestScore == 0 {
			fmt.Fprintln(os.Stderr, "search found no partial-trigger coverage")
			os.Exit(1)
		}
	}
}
