// Command netlist inspects and exports the generated gate-level designs:
// cell statistics per region, the ASCII floorplan, and structural Verilog
// for external EDA flows.
//
// Usage:
//
//	netlist [-golden] [-stats] [-floorplan] [-verilog out.v]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"emtrust/internal/chip"
	"emtrust/internal/netlist"
)

func main() {
	golden := flag.Bool("golden", false, "build the Trojan-free chip")
	stats := flag.Bool("stats", true, "print per-region cell statistics")
	floorplan := flag.Bool("floorplan", false, "print the ASCII floorplan")
	verilog := flag.String("verilog", "", "write structural Verilog to this file")
	flag.Parse()

	cfg := chip.DefaultConfig()
	if *golden {
		cfg.WithTrojans = false
		cfg.WithA2 = false
	}
	c, err := chip.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	n := c.Netlist()

	if *stats {
		total := n.Stats("")
		fmt.Printf("design %s: %d cells, %.0f gate equivalents, %d flip-flops\n",
			n.Name, total.Cells, total.GateEquivalent, total.Sequential)
		for _, region := range n.Regions() {
			s := n.Stats(region)
			fmt.Printf("  %-10s %6d cells %9.0f GE\n", region, s.Cells, s.GateEquivalent)
		}
		fmt.Printf("cell mix:\n")
		type kv struct {
			t netlist.CellType
			n int
		}
		var mix []kv
		for t, cnt := range total.ByType {
			mix = append(mix, kv{t, cnt})
		}
		sort.Slice(mix, func(i, j int) bool { return mix[i].n > mix[j].n })
		for _, m := range mix {
			fmt.Printf("  %-6v %6d\n", m.t, m.n)
		}
	}
	if *floorplan {
		fmt.Print(c.Floorplan().Render(72, 24))
	}
	if *verilog != "" {
		f, err := os.Create(*verilog)
		if err != nil {
			log.Fatal(err)
		}
		if err := netlist.WriteVerilog(f, n); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *verilog)
	}
}
