// Command trustmon demonstrates the runtime trust evaluation loop of
// Figure 1: it builds the virtual chip, fits the golden fingerprint and
// spectral envelope, then streams live traces through the core.Monitor
// while Trojans are activated on a schedule, printing one verdict line
// per trace.
//
// The fitted golden models can be persisted with -save and reused with
// -load, the deployment flow where fingerprinting happens once after
// installation.
//
// Usage:
//
//	trustmon [-traces n] [-golden n] [-cycles n] [-seed n] [-save dir] [-load dir]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"emtrust/internal/chip"
	"emtrust/internal/core"
	"emtrust/internal/trace"
	"emtrust/internal/trojan"
)

func main() {
	nTraces := flag.Int("traces", 40, "monitored traces to stream")
	nGolden := flag.Int("golden", 50, "golden traces for the fingerprint")
	cycles := flag.Int("cycles", 32, "clock cycles per trace")
	seed := flag.Int64("seed", 1, "random seed")
	saveDir := flag.String("save", "", "save the fitted golden models to this directory")
	loadDir := flag.String("load", "", "load previously saved golden models instead of fitting")
	flag.Parse()

	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	pt := []byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}

	cfg := chip.DefaultConfig()
	cfg.Seed = *seed
	c, err := chip.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.DeactivateAll(); err != nil {
		log.Fatal(err)
	}
	c.EnableA2(false)
	ch := chip.MeasurementChannels()

	capture := func() *trace.Trace {
		cap, err := c.CapturePT(pt, key, *cycles)
		if err != nil {
			log.Fatal(err)
		}
		s, _ := c.Acquire(cap, ch)
		return s
	}

	var fp *core.Fingerprint
	var sd *core.SpectralDetector
	if *loadDir != "" {
		log.Printf("loading golden models from %s", *loadDir)
		fp = loadFingerprint(*loadDir)
		sd = loadSpectral(*loadDir)
	} else {
		log.Printf("fitting golden fingerprint from %d traces...", *nGolden)
		golden := make([]*trace.Trace, *nGolden)
		for i := range golden {
			golden[i] = capture()
		}
		var err error
		fp, err = core.BuildFingerprint(golden, core.DefaultFingerprintConfig())
		if err != nil {
			log.Fatal(err)
		}
		sd, err = core.BuildSpectralDetector(golden, core.DefaultSpectralConfig())
		if err != nil {
			log.Fatal(err)
		}
	}
	if *saveDir != "" {
		saveModels(*saveDir, fp, sd)
		log.Printf("saved golden models to %s", *saveDir)
	}
	mon, err := core.NewMonitor(fp, sd, 8)
	if err != nil {
		log.Fatal(err)
	}

	// Activation schedule: each quarter of the stream activates the
	// next Trojan, like the Section V-B measurements.
	schedule := trojan.Kinds()
	perPhase := *nTraces / (len(schedule) + 1)
	if perPhase < 1 {
		perPhase = 1
	}

	go func() {
		defer mon.Close()
		var active *trojan.Kind
		for i := 0; i < *nTraces; i++ {
			phase := i / perPhase
			if phase >= 1 && phase <= len(schedule) {
				want := schedule[phase-1]
				if active == nil || *active != want {
					if active != nil {
						if err := c.SetTrojan(*active, false); err != nil {
							log.Fatal(err)
						}
					}
					if err := c.SetTrojan(want, true); err != nil {
						log.Fatal(err)
					}
					active = &want
					log.Printf("--- adversary activates %v (%s) ---", want, want.Description())
				}
			} else if active != nil {
				if err := c.SetTrojan(*active, false); err != nil {
					log.Fatal(err)
				}
				active = nil
				log.Printf("--- all Trojans dormant ---")
			}
			mon.Submit(capture())
		}
	}()

	for v := range mon.Verdicts() {
		fmt.Println(v)
	}
	total, alarms := mon.Stats()
	fmt.Printf("monitored %d traces, %d alarms\n", total, alarms)
}

func saveModels(dir string, fp *core.Fingerprint, sd *core.SpectralDetector) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	writeTo := func(name string, save func(w io.Writer) error) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			log.Fatal(err)
		}
		if err := save(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	writeTo("fingerprint.json", fp.Save)
	writeTo("spectral.json", sd.Save)
}

func loadFingerprint(dir string) *core.Fingerprint {
	f, err := os.Open(filepath.Join(dir, "fingerprint.json"))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	fp, err := core.LoadFingerprint(f)
	if err != nil {
		log.Fatal(err)
	}
	return fp
}

func loadSpectral(dir string) *core.SpectralDetector {
	f, err := os.Open(filepath.Join(dir, "spectral.json"))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	sd, err := core.LoadSpectralDetector(f)
	if err != nil {
		log.Fatal(err)
	}
	return sd
}
