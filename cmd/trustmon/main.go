// Command trustmon demonstrates the runtime trust evaluation loop of
// Figure 1: it builds the virtual chip, fits the golden fingerprint and
// spectral envelope, then streams live traces through the core.Monitor
// while Trojans are activated on a schedule, printing one verdict line
// per trace.
//
// The fitted golden models can be persisted with -save and reused with
// -load, the deployment flow where fingerprinting happens once after
// installation.
//
// With -inject the monitored stream is acquired through a degraded
// readout chain (internal/degrade's fault profile at the given
// severity) and the monitor runs with the hardening stages — health
// gate, debouncing, guarded re-baselining — so the demo shows the
// difference between "Trojan activated" and "sensor dying" live.
//
// With -array N the whole-die sensor and its golden fingerprint are
// replaced by an N×N on-chip coil array with the golden-model-free
// self-referencing monitor: the array calibrates on the deployed chip
// itself, then each frame's verdict names the hottest cell and die tile
// (-channels bounds the ADC mux budget).
//
// With -fleet the single-die demo is replaced by the internal/fleet
// service: a population of process-variation sibling dies monitored by
// sharded workers behind a bounded verdict queue, with cross-die
// common-mode cancellation and a Benjamini-Hochberg alarm list. The
// service runs until -rounds, -duration, or SIGINT/SIGTERM, drains
// in-flight verdicts, prints the fleet summary, and exits 0; -http
// serves the live /status and /alarms JSON endpoints meanwhile.
//
// Usage:
//
//	trustmon [-traces n] [-golden n] [-cycles n] [-seed n] [-inject sev] [-save dir] [-load dir] [-array n [-channels k]]
//	trustmon -fleet [-dies n] [-shards n] [-rounds n] [-duration d] [-prevalence f] [-severity f] [-http addr]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"emtrust/internal/chip"
	"emtrust/internal/core"
	"emtrust/internal/degrade"
	"emtrust/internal/sensorarray"
	"emtrust/internal/trace"
	"emtrust/internal/trojan"
)

func main() {
	nTraces := flag.Int("traces", 40, "monitored traces to stream")
	nGolden := flag.Int("golden", 50, "golden traces for the fingerprint")
	cycles := flag.Int("cycles", 32, "clock cycles per trace")
	seed := flag.Int64("seed", 1, "random seed")
	saveDir := flag.String("save", "", "save the fitted golden models to this directory")
	loadDir := flag.String("load", "", "load previously saved golden models instead of fitting")
	inject := flag.Float64("inject", 0, "inject acquisition-chain faults at this severity (0 = healthy channel; 1-3 is a plausible aging sweep) and run the hardened monitor")
	array := flag.Int("array", 0, "monitor with an NxN sensor array and the golden-model-free detector instead of the fingerprint (0 = off)")
	channels := flag.Int("channels", 0, "ADC channel budget for -array: coils digitized per capture window (0 = all at once)")
	fleetMode := flag.Bool("fleet", false, "run the fleet monitoring service instead of the single-die demo")
	dies := flag.Int("dies", 64, "fleet population size (-fleet)")
	shards := flag.Int("shards", 4, "fleet monitor workers (-fleet)")
	rounds := flag.Int("rounds", 0, "fleet monitored rounds per die, 0 = until -duration or signal (-fleet)")
	duration := flag.Duration("duration", 0, "fleet run deadline, 0 = none (-fleet)")
	prevalence := flag.Float64("prevalence", 0.01, "fraction of fleet dies fabricated with the Trojan (-fleet)")
	severity := flag.Float64("severity", 1, "fleet acquisition-chain aging severity (-fleet)")
	httpAddr := flag.String("http", "", "serve fleet /status and /alarms on this address, e.g. :8080 (-fleet)")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex contention profile of the run to this file")
	blockprofile := flag.String("blockprofile", "", "write a blocking (off-CPU wait) profile of the run to this file")
	flag.Parse()

	defer startContentionProfiles(*mutexprofile, *blockprofile)()

	if *fleetMode {
		runFleet(fleetFlags{
			dies: *dies, shards: *shards, rounds: *rounds, duration: *duration,
			prevalence: *prevalence, severity: *severity, seed: *seed, httpAddr: *httpAddr,
		})
		return
	}

	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	pt := []byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}

	cfg := chip.DefaultConfig()
	cfg.Seed = *seed
	c, err := chip.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.DeactivateAll(); err != nil {
		log.Fatal(err)
	}
	c.EnableA2(false)

	if *array > 0 {
		runArray(c, *array, *channels, *nTraces, *cycles, pt, key)
		return
	}

	ch := chip.MeasurementChannels()

	capture := func() *trace.Trace {
		cap, err := c.CapturePT(pt, key, *cycles)
		if err != nil {
			log.Fatal(err)
		}
		s, _ := c.Acquire(cap, ch)
		return s
	}

	var fp *core.Fingerprint
	var sd *core.SpectralDetector
	var golden []*trace.Trace
	if *loadDir != "" {
		log.Printf("loading golden models from %s", *loadDir)
		fp = loadFingerprint(*loadDir)
		sd = loadSpectral(*loadDir)
	} else {
		log.Printf("fitting golden fingerprint from %d traces...", *nGolden)
		golden = make([]*trace.Trace, *nGolden)
		for i := range golden {
			golden[i] = capture()
		}
		var err error
		fp, err = core.BuildFingerprint(golden, core.DefaultFingerprintConfig())
		if err != nil {
			log.Fatal(err)
		}
		sd, err = core.BuildSpectralDetector(golden, core.DefaultSpectralConfig())
		if err != nil {
			log.Fatal(err)
		}
	}
	if *saveDir != "" {
		saveModels(*saveDir, fp, sd)
		log.Printf("saved golden models to %s", *saveDir)
	}

	var mon *core.Monitor
	var err2 error
	if *inject > 0 {
		// The health envelope needs golden traces; with -load the models
		// came from disk, so calibrate from a short fresh capture on the
		// still-healthy channel.
		if golden == nil {
			log.Printf("capturing %d traces to calibrate the channel-health envelope...", healthCalibration)
			golden = make([]*trace.Trace, healthCalibration)
			for i := range golden {
				golden[i] = capture()
			}
		}
		health, err := core.BuildChannelHealth(golden, core.DefaultHealthConfig())
		if err != nil {
			log.Fatal(err)
		}
		prof := degrade.Profile{
			Severity: *inject,
			RefRMS:   health.GoldenRMS,
			RefPeak:  health.GoldenPeak,
			Span:     4 * *nTraces,
		}
		ch.Sensor = degrade.Wrap(ch.Sensor, prof.Stages()...)
		log.Printf("injecting acquisition-chain faults at severity %.1fx; hardened monitor engaged", *inject)
		mon, err2 = core.NewMonitorWith(fp, sd, core.HardenedOptions(health))
	} else {
		mon, err2 = core.NewMonitor(fp, sd, 8)
	}
	if err2 != nil {
		log.Fatal(err2)
	}

	// Activation schedule: each quarter of the stream activates the
	// next Trojan, like the Section V-B measurements.
	schedule := trojan.Kinds()
	perPhase := *nTraces / (len(schedule) + 1)
	if perPhase < 1 {
		perPhase = 1
	}

	go func() {
		defer mon.Close()
		var active *trojan.Kind
		for i := 0; i < *nTraces; i++ {
			phase := i / perPhase
			if phase >= 1 && phase <= len(schedule) {
				want := schedule[phase-1]
				if active == nil || *active != want {
					if active != nil {
						if err := c.SetTrojan(*active, false); err != nil {
							log.Fatal(err)
						}
					}
					if err := c.SetTrojan(want, true); err != nil {
						log.Fatal(err)
					}
					active = &want
					log.Printf("--- adversary activates %v (%s) ---", want, want.Description())
				}
			} else if active != nil {
				if err := c.SetTrojan(*active, false); err != nil {
					log.Fatal(err)
				}
				active = nil
				log.Printf("--- all Trojans dormant ---")
			}
			mon.Submit(capture())
		}
	}()

	for v := range mon.Verdicts() {
		fmt.Println(v)
	}
	total, alarms := mon.Stats()
	if *inject > 0 {
		rejected, confirmed := mon.HardenedStats()
		fmt.Printf("monitored %d traces, %d raw alarms, %d confirmed, %d health-rejected\n",
			total, alarms, confirmed, rejected)
	} else {
		fmt.Printf("monitored %d traces, %d alarms\n", total, alarms)
	}
}

// healthCalibration is the capture count for the channel-health envelope
// when the golden models were loaded from disk.
const healthCalibration = 20

// arrayCalFrames is the self-calibration frame count of the -array mode.
const arrayCalFrames = 8

// runArray is the -array mode: no golden model anywhere. The array
// calibrates its cross-sensor baseline on the deployed chip, then the
// activation schedule runs and each frame's verdict names the hottest
// cell; at the end of an alarming phase the per-cell heatmap is printed.
func runArray(c *chip.Chip, n, channels, nTraces, cycles int, pt, key []byte) {
	acfg := sensorarray.ConfigFor(c.Config(), n)
	acfg.Channels = channels
	arr, err := sensorarray.New(c.Floorplan(), acfg)
	if err != nil {
		log.Fatal(err)
	}
	ch := sensorarray.DefaultChannel()
	scan := func() *sensorarray.Frame {
		f, err := arr.ScanEncryption(c, ch, pt, key, cycles)
		if err != nil {
			log.Fatal(err)
		}
		return f
	}

	log.Printf("sensor array %dx%d, %d capture windows per frame; self-calibrating on %d frames (no golden model)",
		n, n, arr.Windows(), arrayCalFrames)
	scan() // warm-up, absorbs the cold-start transient
	frames := make([]*sensorarray.Frame, arrayCalFrames)
	for i := range frames {
		frames[i] = scan()
	}
	mon, err := sensorarray.Calibrate(arr, frames, nil, core.DefaultSelfReferenceConfig())
	if err != nil {
		log.Fatal(err)
	}

	schedule := trojan.Kinds()
	perPhase := nTraces / (len(schedule) + 1)
	if perPhase < 1 {
		perPhase = 1
	}
	grid := c.Floorplan().Grid
	var active *trojan.Kind
	alarms := 0
	for i := 0; i < nTraces; i++ {
		phase := i / perPhase
		if phase >= 1 && phase <= len(schedule) {
			want := schedule[phase-1]
			if active == nil || *active != want {
				if active != nil {
					if err := c.SetTrojan(*active, false); err != nil {
						log.Fatal(err)
					}
				}
				if err := c.SetTrojan(want, true); err != nil {
					log.Fatal(err)
				}
				active = &want
				log.Printf("--- adversary activates %v (%s) ---", want, want.Description())
			}
		} else if active != nil {
			if err := c.SetTrojan(*active, false); err != nil {
				log.Fatal(err)
			}
			active = nil
			log.Printf("--- all Trojans dormant ---")
		}
		f := scan()
		v, err := mon.Evaluate(f)
		if err != nil {
			log.Fatal(err)
		}
		status := "ok"
		if v.Alarm {
			alarms++
			cx, cy := arr.CellXY(v.ArgMax)
			tile := arr.CellTile(v.ArgMax)
			status = fmt.Sprintf("ALARM  cell (%d,%d) tile (%d,%d)", cx, cy, tile%grid.NX, tile/grid.NX)
		}
		fmt.Printf("frame %3d: max z %7.1f  %s\n", i, v.Max, status)
		if v.Alarm && (i+1)%perPhase == 0 {
			fmt.Print(mon.HeatmapString(v.Z))
		}
	}
	fmt.Printf("monitored %d frames, %d alarms, no golden model consulted\n", nTraces, alarms)
}

func saveModels(dir string, fp *core.Fingerprint, sd *core.SpectralDetector) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	writeTo := func(name string, save func(w io.Writer) error) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			log.Fatal(err)
		}
		if err := save(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	writeTo("fingerprint.json", fp.Save)
	writeTo("spectral.json", sd.Save)
}

func loadFingerprint(dir string) *core.Fingerprint {
	f, err := os.Open(filepath.Join(dir, "fingerprint.json"))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	fp, err := core.LoadFingerprint(f)
	if err != nil {
		log.Fatal(err)
	}
	return fp
}

func loadSpectral(dir string) *core.SpectralDetector {
	f, err := os.Open(filepath.Join(dir, "spectral.json"))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	sd, err := core.LoadSpectralDetector(f)
	if err != nil {
		log.Fatal(err)
	}
	return sd
}

// startContentionProfiles enables the runtime's mutex and block
// samplers when the corresponding flag names an output file, and
// returns the function that writes the collected profiles. The
// samplers stay off by default — they tax every lock operation — so
// the fleet hot path only pays for them when a profile was requested.
func startContentionProfiles(mutexFile, blockFile string) func() {
	if mutexFile == "" && blockFile == "" {
		return func() {}
	}
	if mutexFile != "" {
		runtime.SetMutexProfileFraction(5)
	}
	if blockFile != "" {
		// Sample every blocking event at nanosecond granularity; the
		// shard workers block on channel sends, not spin, so the
		// overhead is acceptable for a profiling run.
		runtime.SetBlockProfileRate(1)
	}
	write := func(name, file string) {
		if file == "" {
			return
		}
		f, err := os.Create(file)
		if err != nil {
			log.Printf("contention profile: %v", err)
			return
		}
		defer f.Close()
		if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
			log.Printf("contention profile %s: %v", name, err)
			return
		}
		log.Printf("wrote %s profile to %s", name, file)
	}
	return func() {
		write("mutex", mutexFile)
		write("block", blockFile)
	}
}
