package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"emtrust/internal/fleet"
)

// fleetFlags carries the -fleet mode's knobs from main.
type fleetFlags struct {
	dies       int
	shards     int
	rounds     int
	duration   time.Duration
	prevalence float64
	severity   float64
	seed       int64
	httpAddr   string
}

// runFleet is the -fleet mode: enroll a simulated die population, run
// the sharded monitoring service until the round budget, the -duration
// deadline, or SIGINT/SIGTERM — whichever comes first — then drain
// in-flight verdicts and print the final fleet summary. Interruption is
// a normal shutdown, not an error: the process exits 0.
func runFleet(f fleetFlags) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if f.duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.duration)
		defer cancel()
	}

	cfg := fleet.DefaultConfig()
	cfg.Dies = f.dies
	cfg.Shards = f.shards
	cfg.Rounds = f.rounds
	cfg.Prevalence = f.prevalence
	cfg.Severity = f.severity
	cfg.Seed = f.seed

	log.Printf("enrolling %d dies on %d shards (prevalence %.1f%%, severity %.1f)...",
		cfg.Dies, cfg.Shards, 100*cfg.Prevalence, cfg.Severity)
	s, err := fleet.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Start(ctx); err != nil {
		log.Fatal(err)
	}

	var srv *http.Server
	if f.httpAddr != "" {
		ln, err := net.Listen("tcp", f.httpAddr)
		if err != nil {
			s.Close()
			log.Fatal(err)
		}
		srv = &http.Server{Handler: s.Handler()}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				log.Printf("http: %v", err)
			}
		}()
		log.Printf("serving /status and /alarms on %s", ln.Addr())
	}

	// One status line per second while the fleet runs.
	heartbeat := make(chan struct{})
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-heartbeat:
				return
			case <-t.C:
				st := s.Status()
				log.Printf("rounds %d  verdicts %d  dropped %d  queue %d/%d  alarms %d  quarantined %d  crashes %d",
					st.Rounds, st.Verdicts, st.Dropped, st.QueueLen, st.QueueCap,
					st.Alarms, st.Quarantined, st.Crashes)
			}
		}
	}()

	st := s.Wait()
	close(heartbeat)
	if srv != nil {
		srv.Close()
	}

	fmt.Printf("fleet of %d dies (%d infected by the fab): %d verdicts over %d rounds, %d shed, %d rejected\n",
		st.Dies, st.Infected, st.Verdicts, st.Rounds, st.Dropped, st.Rejected)
	fmt.Printf("supervision: %d crashes, %d restarts, %d/%d shards live; %d capture timeouts, %d dies quarantined\n",
		st.Crashes, st.Restarts, st.LiveShards, st.Shards, st.Timeouts, st.Quarantined)
	alarms := s.Alarms()
	fmt.Printf("alarm list (FDR %.0f%%): %d dies flagged\n", 100*s.Config().FDR, len(alarms))
	for i, a := range alarms {
		if i >= 10 {
			fmt.Printf("  ... and %d more\n", len(alarms)-i)
			break
		}
		fmt.Printf("  die %4d  score %7.1f  p %.3g  (%d/%d rounds confirmed)\n",
			a.Die, a.Score, a.P, a.Confirmed, a.Verdicts)
	}
}
