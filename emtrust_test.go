package emtrust_test

import (
	"sync"
	"testing"

	"emtrust"
)

// Devices are expensive to build; share them across the facade tests.
var (
	devOnce sync.Once
	devInst *emtrust.Device
	devErr  error
)

func device(t *testing.T) *emtrust.Device {
	t.Helper()
	devOnce.Do(func() {
		devInst, devErr = emtrust.NewDevice(emtrust.DeviceOptions{Measurement: true, Seed: 7})
	})
	if devErr != nil {
		t.Fatal(devErr)
	}
	return devInst
}

func TestTrojansList(t *testing.T) {
	ks := emtrust.Trojans()
	if len(ks) != 4 {
		t.Fatalf("Trojans() = %v", ks)
	}
	if ks[0] != emtrust.T1AMLeaker || ks[3] != emtrust.T4PowerHog {
		t.Fatalf("order wrong: %v", ks)
	}
	for _, k := range ks {
		if emtrust.Describe(k) == "" {
			t.Errorf("no description for %v", k)
		}
	}
}

func TestDeviceDefaults(t *testing.T) {
	dev := device(t)
	tr, err := dev.CaptureTrace()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 32*dev.Chip().Config().Power.SamplesPerCycle {
		t.Fatalf("default capture length %d", len(tr.Samples))
	}
	s, p, err := dev.CaptureBoth()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Samples) != len(p.Samples) {
		t.Fatal("channel lengths differ")
	}
	idleS, idleP, err := dev.CaptureIdleBoth(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(idleS.Samples) != 20*dev.Chip().Config().Power.SamplesPerCycle || len(idleP.Samples) != len(idleS.Samples) {
		t.Fatal("idle capture length wrong")
	}
}

func TestGoldenDeviceRejectsTrojanControl(t *testing.T) {
	dev, err := emtrust.NewDevice(emtrust.DeviceOptions{Golden: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.SetTrojan(emtrust.T1AMLeaker, true); err == nil {
		t.Fatal("golden device must not accept Trojan triggers")
	}
	// EnableA2 must be a harmless no-op on a golden device.
	dev.EnableA2(true)
	if _, err := dev.CaptureIdle(16); err != nil {
		t.Fatal(err)
	}
}

func TestFitNeedsGolden(t *testing.T) {
	if _, err := emtrust.Fit(nil); err == nil {
		t.Fatal("Fit(nil) must error")
	}
}

func TestEndToEndDetection(t *testing.T) {
	dev := device(t)
	golden, err := dev.CollectGolden(30)
	if err != nil {
		t.Fatal(err)
	}
	if len(golden) != 30 {
		t.Fatalf("collected %d", len(golden))
	}
	det, err := emtrust.Fit(golden)
	if err != nil {
		t.Fatal(err)
	}

	// Clean traces stay quiet.
	falseAlarms := 0
	for i := 0; i < 10; i++ {
		tr, err := dev.CaptureTrace()
		if err != nil {
			t.Fatal(err)
		}
		if det.Evaluate(tr).Alarm() {
			falseAlarms++
		}
	}
	if falseAlarms > 2 {
		t.Fatalf("%d/10 false alarms on a dormant chip", falseAlarms)
	}

	// The loud Trojans trip the detector.
	for _, k := range []emtrust.TrojanKind{emtrust.T1AMLeaker, emtrust.T2LeakageCurrent} {
		if err := dev.SetTrojan(k, true); err != nil {
			t.Fatal(err)
		}
		hits := 0
		for i := 0; i < 5; i++ {
			tr, err := dev.CaptureTrace()
			if err != nil {
				t.Fatal(err)
			}
			if det.Evaluate(tr).Alarm() {
				hits++
			}
		}
		if err := dev.SetTrojan(k, false); err != nil {
			t.Fatal(err)
		}
		if hits < 4 {
			t.Errorf("%v: only %d/5 alarms", k, hits)
		}
	}
}

func TestFacadeMonitor(t *testing.T) {
	dev := device(t)
	golden, err := dev.CollectGolden(25)
	if err != nil {
		t.Fatal(err)
	}
	det, err := emtrust.Fit(golden)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := det.NewMonitor(2)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; i < 4; i++ {
			tr, err := dev.CaptureTrace()
			if err != nil {
				panic(err)
			}
			mon.Submit(tr)
		}
		mon.Close()
	}()
	count := 0
	for range mon.Verdicts() {
		count++
	}
	if count != 4 {
		t.Fatalf("got %d verdicts", count)
	}
}

func TestDeviceCustomOptions(t *testing.T) {
	key := make([]byte, 16)
	pt := make([]byte, 16)
	for i := range key {
		key[i] = byte(i)
		pt[i] = byte(255 - i)
	}
	dev, err := emtrust.NewDevice(emtrust.DeviceOptions{
		Golden:    true,
		Seed:      11,
		Cycles:    40,
		Key:       key,
		Plaintext: pt,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := dev.CaptureTrace()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 40*dev.Chip().Config().Power.SamplesPerCycle {
		t.Fatal("custom cycle count ignored")
	}
}

func TestDeviceReproducibility(t *testing.T) {
	build := func() []float64 {
		dev, err := emtrust.NewDevice(emtrust.DeviceOptions{Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := dev.CaptureTrace()
		if err != nil {
			t.Fatal(err)
		}
		return tr.Samples
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different traces at sample %d", i)
		}
	}
}
